// Quickstart: the smallest end-to-end use of the library.
//
// It simulates a handful of CPU2006-like workloads on the Core 2-like
// machine (collecting performance counters, exactly what you would get
// from perfmon on real hardware), fits the mechanistic-empirical model
// on those counters, and prints a CPI stack for one workload — the
// paper's headline capability.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

func main() {
	// 1. Pick a machine and a workload suite.
	machine := uarch.CoreTwo()
	suite := suites.CPU2006Like(suites.Options{NumOps: 100000})

	// 2. "Run the benchmarks on the target hardware and collect hardware
	//    performance counter data" (paper, Figure 1). Sixteen workloads
	//    keep the quickstart quick; use the whole suite for real fits.
	s, err := sim.New(machine)
	if err != nil {
		log.Fatal(err)
	}
	var obs []core.Observation
	for _, w := range suite.Workloads[:16] {
		res, err := s.Run(trace.New(w))
		if err != nil {
			log.Fatal(err)
		}
		o, err := core.ObservationFrom(w.Name, &res.Counters)
		if err != nil {
			log.Fatal(err)
		}
		obs = append(obs, o)
		fmt.Printf("ran %-14s CPI=%.3f  (%s)\n", w.Name, res.Counters.CPI(), &res.Counters)
	}

	// 3. Infer the model: non-linear regression fits the ten unknown
	//    parameters (branch resolution time, MLP, resource stalls).
	model, err := core.Fit(machine.Params(), obs, core.FitOptions{Starts: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(model)

	// 4. The payoff: a CPI stack for any workload, from counters alone.
	target := obs[0]
	fmt.Println()
	fmt.Print(stack.RenderCPIStack(
		fmt.Sprintf("CPI stack for %s on %s", target.Name, machine.Name),
		model.Stack(target.Feat)))
	fmt.Printf("(measured CPI %.3f, predicted %.3f)\n",
		target.MeasuredCPI, model.PredictCPI(target.Feat))
}
