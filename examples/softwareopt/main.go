// Softwareopt: use CPI stacks to guide a software optimization.
//
// The scenario the paper's introduction motivates: a developer has a slow
// application and performance counters, but raw counters don't say where
// the cycles go on an out-of-order machine (overlap hides latencies). A
// fitted mechanistic-empirical model turns the counters into a CPI stack
// that does.
//
// Here the "application" is a pointer-chasing graph kernel. Its stack
// pinpoints last-level-cache loads as the dominant component, with heavy
// serialization (low MLP). We then apply the classic remedy — a
// pointer-free, locality-friendly data layout (think linked lists →
// index arrays + blocking) — re-measure, and let the stacks explain both
// the speedup and where the next bottleneck moved.
//
// Run with: go run ./examples/softwareopt
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// application is the "before" program: a graph kernel chasing pointers
// across a 200MB heap with poor locality.
func application() trace.Spec {
	return trace.Spec{
		Name:             "graphkernel-v1",
		Seed:             2024,
		NumOps:           400000,
		LoadFrac:         0.32,
		StoreFrac:        0.08,
		FPFrac:           0.02,
		MulFrac:          0.02,
		DivFrac:          0.002,
		BranchHardFrac:   0.25,
		CodeFootprint:    64 << 10,
		CodeLocality:     0.8,
		DataFootprint:    200 << 20,
		DataLocality:     0.05,
		PointerChaseFrac: 0.55, // linked structures: each load waits on the last
		DepDistMean:      7,
		LongChainFrac:    0.12,
		FusibleFrac:      0.45,
	}
}

// optimized is the "after" program: the same kernel after a data-layout
// rewrite — indices instead of pointers (chasing gone), blocked traversal
// (higher locality, small resident set).
func optimized() trace.Spec {
	s := application()
	s.Name = "graphkernel-v2"
	s.PointerChaseFrac = 0.05
	s.DataLocality = 0.55
	s.HotBytes = 2 << 20 // blocked working set
	return s
}

func main() {
	machine := uarch.CoreI7()
	s, err := sim.New(machine)
	if err != nil {
		log.Fatal(err)
	}

	// Fit the machine's model once, from the standard suite — exactly how
	// a deployed model would be built (the application is NOT in the
	// training set; the model generalizes, Section 5.2).
	fmt.Println("fitting the corei7 model from the cpu2006-like suite…")
	var obs []core.Observation
	for _, w := range suites.CPU2006Like(suites.Options{NumOps: 150000}).Workloads {
		res, err := s.Run(trace.New(w))
		if err != nil {
			log.Fatal(err)
		}
		o, err := core.ObservationFrom(w.Name, &res.Counters)
		if err != nil {
			log.Fatal(err)
		}
		obs = append(obs, o)
	}
	model, err := core.Fit(machine.Params(), obs, core.FitOptions{Starts: 10})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(spec trace.Spec) (core.Observation, float64) {
		res, err := s.Run(trace.New(spec))
		if err != nil {
			log.Fatal(err)
		}
		o, err := core.ObservationFrom(spec.Name, &res.Counters)
		if err != nil {
			log.Fatal(err)
		}
		return o, res.MeasuredMLP
	}

	before, mlpBefore := measure(application())
	fmt.Println()
	fmt.Print(stack.RenderCPIStack("BEFORE: "+before.Name, model.Stack(before.Feat)))
	fmt.Printf("measured CPI %.3f; oracle MLP %.2f; model MLP %.2f\n",
		before.MeasuredCPI, mlpBefore, model.MLP(before.Feat))

	after, mlpAfter := measure(optimized())
	fmt.Println()
	fmt.Print(stack.RenderCPIStack("AFTER:  "+after.Name, model.Stack(after.Feat)))
	fmt.Printf("measured CPI %.3f; oracle MLP %.2f; model MLP %.2f\n",
		after.MeasuredCPI, mlpAfter, model.MLP(after.Feat))

	fmt.Println()
	speedup := before.MeasuredCPI / after.MeasuredCPI
	fmt.Printf("speedup: %.2fx\n", speedup)
	fmt.Println()
	fmt.Println("reading guide: v1's stack is dominated by llc-load, and the oracle MLP")
	fmt.Println("(~1.3) confirms the misses barely overlap — pointer chasing serializes")
	fmt.Println("them. v2 removes the chase and blocks the traversal: fewer misses, more")
	fmt.Println("overlap (MLP up), and a large net speedup. The stack also shows what is")
	fmt.Println("left — llc-load still leads, so the next step is shrinking the tail of")
	fmt.Println("out-of-block accesses, not (say) the branch predictor.")
}
