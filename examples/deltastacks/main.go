// Deltastacks: where does a new machine's speedup come from?
//
// This example reproduces the paper's Section 6 case study in miniature:
// it runs the CPU2006-like suite on the Core 2-like and Core i7-like
// machines, fits a model per machine, and prints CPI-delta stacks that
// break the per-instruction CPI change into dispatch width, µop fusion,
// I-cache, memory, branch and resource-stall contributions — then breaks
// the branch and last-level-cache components into their model factors
// (e.g. fewer LLC misses vs. reduced MLP).
//
// Capacity effects need long runs (the i7's L3 removing misses), so this
// example simulates 1.2M µops per workload and takes about a minute.
//
// Run with: go run ./examples/deltastacks
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

func main() {
	suite := suites.CPU2006Like(suites.Options{NumOps: 1200000})
	machines := []*uarch.Machine{uarch.CoreTwo(), uarch.CoreI7()}

	models := make([]*core.Model, 2)
	runs := make([][]core.MachineRun, 2)
	for i, m := range machines {
		s, err := sim.New(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("running %d workloads on %s…\n", len(suite.Workloads), m.Name)
		var obs []core.Observation
		for _, w := range suite.Workloads {
			res, err := s.Run(trace.New(w))
			if err != nil {
				log.Fatal(err)
			}
			o, err := core.ObservationFrom(w.Name, &res.Counters)
			if err != nil {
				log.Fatal(err)
			}
			obs = append(obs, o)
			runs[i] = append(runs[i], core.MachineRun{Name: w.Name, Ctr: res.Counters})
		}
		models[i], err = core.Fit(m.Params(), obs, core.FitOptions{Starts: 10})
		if err != nil {
			log.Fatal(err)
		}
	}

	d, err := core.ComputeDelta(
		machines[0].Name, models[0], runs[0],
		machines[1].Name, models[1], runs[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(stack.RenderDelta(d))
	fmt.Println()
	fmt.Println("reading guide: negative bars are Core i7 improvements. Look for the")
	fmt.Println("paper's headline effect in the LLC factors: the big L3 removes misses")
	fmt.Println("(negative '#misses') but the removed misses were partly overlapped, so")
	fmt.Println("MLP drops and gives some of the win back (positive 'MLP').")
}
