// Benchmarks regenerating every table and figure of the paper, plus
// ablation benches for the design choices DESIGN.md calls out and
// throughput benches for the substrates. Each figure bench reports the
// headline numbers of its artifact via b.ReportMetric (e.g. avg CPI
// error in percent), so `go test -bench=. -benchmem` reproduces the
// paper's rows/series in one run.
//
// The simulation campaign (103 workloads × 3 machines) is shared across
// benchmarks through a lazily initialized lab; fitted models are reset
// per iteration so the regression cost is measured honestly.
package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/calibrator"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rng"
	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

var (
	labOnce sync.Once
	labInst *experiments.Lab
	labErr  error
)

// benchOps is the per-workload µop count of the shared campaign. 1.2M
// µops are needed for the cache-capacity effects the paper's Figure 6
// hinges on (the i7's 8MB L3 removing misses that the Core 2's 4MB L2
// takes); CI smoke runs shrink it via REPRO_BENCH_OPS.
func benchOps() int {
	if s := os.Getenv("REPRO_BENCH_OPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1200000
}

// benchStore opens the run store the shared campaign is cached in, so
// benchmark reruns are warm (zero re-simulation). REPRO_RUNSTORE picks
// the directory ("off" disables caching); the default lives under the
// system temp directory, per-user so two users on one host don't fight
// over file ownership, and is keyed by µop count through the spec hash.
func benchStore() (*runstore.Store, error) {
	dir := os.Getenv("REPRO_RUNSTORE")
	if dir == "off" {
		return nil, nil
	}
	if dir == "" {
		dir = filepath.Join(os.TempDir(), fmt.Sprintf("repro-runstore-%d", os.Getuid()))
	}
	return runstore.Open(dir)
}

// benchLab simulates the full campaign once per test binary invocation
// and shares it across all figure benches; with a warm run store even
// that one campaign is pure cache hits.
func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		store, err := benchStore()
		if err != nil {
			labErr = err
			return
		}
		labInst = experiments.NewLab(experiments.Options{
			NumOps:    benchOps(),
			FitStarts: 6,
			Store:     store,
		})
		labErr = labInst.Simulate()
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return labInst
}

// --- Table 1: processor configurations. ---

func BenchmarkTable1Configs(b *testing.B) {
	l := experiments.NewLab(experiments.Options{})
	for i := 0; i < b.N; i++ {
		if out := l.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Table 2: micro-architecture parameters via calibration. ---

func BenchmarkTable2Calibration(b *testing.B) {
	l := experiments.NewLab(experiments.Options{})
	var maxRelErr float64
	for i := 0; i < b.N; i++ {
		rows, _, err := l.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			e := stats.RelErr(float64(r.Measured.MemLat), float64(r.Configured.MemLat))
			if e > maxRelErr {
				maxRelErr = e
			}
		}
	}
	b.ReportMetric(100*maxRelErr, "max-mem-lat-err-%")
}

// --- Figure 2: model accuracy, no cross-validation. ---

func BenchmarkFig2ModelAccuracy(b *testing.B) {
	l := benchLab(b)
	var avg2000, avg2006, maxErr, frac20 float64
	for i := 0; i < b.N; i++ {
		l.ResetModels()
		panels, _, err := l.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		avg2000, avg2006, maxErr, frac20 = 0, 0, 0, 0
		for _, p := range panels {
			if p.Suite == "cpu2000" {
				avg2000 += p.MARE / 3
			} else {
				avg2006 += p.MARE / 3
			}
			if p.MaxErr > maxErr {
				maxErr = p.MaxErr
			}
			frac20 += p.FracBelow20 / 6
		}
	}
	b.ReportMetric(100*avg2000, "avg-err-2000-%") // paper: 9.7%
	b.ReportMetric(100*avg2006, "avg-err-2006-%") // paper: 10.5%
	b.ReportMetric(100*maxErr, "max-err-%")       // paper: 35%
	b.ReportMetric(100*frac20, "frac-below-20-%") // paper: 90%
}

// --- Figure 3: robustness (cross-suite model transfer). ---

func BenchmarkFig3Robustness(b *testing.B) {
	l := benchLab(b)
	var inSuite, transfer float64
	for i := 0; i < b.N; i++ {
		l.ResetModels()
		results, _, err := l.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		inSuite, transfer = 0, 0
		for _, r := range results {
			inSuite += r.InSuiteMARE / 3
			transfer += r.TransferMARE / 3
		}
	}
	b.ReportMetric(100*inSuite, "insuite-err-%")
	b.ReportMetric(100*transfer, "transfer-err-%") // paper: only slightly worse
}

// --- Figure 4: vs purely empirical models. ---

func BenchmarkFig4EmpiricalComparison(b *testing.B) {
	l := benchLab(b)
	var meNoCV, annNoCV, linNoCV, meCV, annCV, linCV float64
	for i := 0; i < b.N; i++ {
		l.ResetModels()
		cells, _, err := l.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		meNoCV, annNoCV, linNoCV, meCV, annCV, linCV = 0, 0, 0, 0, 0, 0
		for _, c := range cells {
			if c.TrainSuite == c.EvalSuite {
				meNoCV += c.Mechanistic / 6
				annNoCV += c.ANN / 6
				linNoCV += c.Linear / 6
			} else {
				meCV += c.Mechanistic / 6
				annCV += c.ANN / 6
				linCV += c.Linear / 6
			}
		}
	}
	b.ReportMetric(100*meNoCV, "mech-nocv-%") // paper: all comparable…
	b.ReportMetric(100*annNoCV, "ann-nocv-%")
	b.ReportMetric(100*linNoCV, "linear-nocv-%")
	b.ReportMetric(100*meCV, "mech-cv-%") // …but ME wins under CV
	b.ReportMetric(100*annCV, "ann-cv-%")
	b.ReportMetric(100*linCV, "linear-cv-%")
}

// --- Figure 5: per-component validation against ground truth. ---

func BenchmarkFig5ComponentValidation(b *testing.B) {
	l := benchLab(b)
	var llc, branch, resource float64
	for i := 0; i < b.N; i++ {
		l.ResetModels()
		res, _, err := l.Fig5("core2", "cpu2006")
		if err != nil {
			b.Fatal(err)
		}
		llc = res.MAREByComp[sim.CompLLCLoad]
		branch = res.MAREByComp[sim.CompBranch]
		resource = res.MAREByComp[sim.CompResource]
	}
	b.ReportMetric(100*llc, "llc-comp-err-%") // paper: hardest, 9.2%
	b.ReportMetric(100*branch, "branch-comp-err-%")
	b.ReportMetric(100*resource, "resource-comp-err-%") // paper: second hardest
}

// --- Figure 6: CPI-delta stacks. ---

func BenchmarkFig6DeltaStacks(b *testing.B) {
	l := benchLab(b)
	var p4ToCore2, core2ToI7 float64
	for i := 0; i < b.N; i++ {
		l.ResetModels()
		deltas, _, err := l.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		p4ToCore2 = deltas["cpu2006:pentium4->core2"].Overall.Total()
		core2ToI7 = deltas["cpu2006:core2->corei7"].Overall.Total()
	}
	b.ReportMetric(p4ToCore2, "p4-to-core2-dCPI") // paper: large improvement
	b.ReportMetric(core2ToI7, "core2-to-i7-dCPI") // paper: memory-driven win
}

// --- Extension: one-axis parameter sweep (the scenario engine's
// model-extrapolation experiment). Shares the run store with the main
// campaign, so reruns are warm. Reports how far the base-fitted model
// drifts from the simulator at the extreme swept points. ---

func BenchmarkSweepROBExtrapolation(b *testing.B) {
	store, err := benchStore()
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{NumOps: benchOps(), FitStarts: 6, Store: store}
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSweep(uarch.CoreTwo(), "rob", []int{48, 96, 192}, "cpu2000", opts)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range res.Points {
			if e := p.Err(); e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(100*worst, "worst-extrap-err-%")
}

// --- Ablations (DESIGN.md §5): cross-validated error with one design
// choice removed; compare against mech-cv-% from Fig4. ---

func benchAblation(b *testing.B, opts core.FitOptions) {
	l := benchLab(b)
	trainObs, err := l.Observations("core2", "cpu2000")
	if err != nil {
		b.Fatal(err)
	}
	evalObs, err := l.Observations("core2", "cpu2006")
	if err != nil {
		b.Fatal(err)
	}
	meas := make([]float64, len(evalObs))
	for i, o := range evalObs {
		meas[i] = o.MeasuredCPI
	}
	params := uarch.CoreTwo().Params()
	opts.Starts = 6
	var mare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.Fit(params, trainObs, opts)
		if err != nil {
			b.Fatal(err)
		}
		mare = stats.MARE(m.PredictAll(evalObs), meas)
	}
	b.ReportMetric(100*mare, "cv-err-%")
}

func BenchmarkAblationFullModel(b *testing.B) { benchAblation(b, core.FitOptions{}) }

func BenchmarkAblationAdditiveBranch(b *testing.B) {
	benchAblation(b, core.FitOptions{AdditiveBranch: true})
}

func BenchmarkAblationConstantMLP(b *testing.B) {
	benchAblation(b, core.FitOptions{ConstantMLP: true})
}

func BenchmarkAblationUnscaledStall(b *testing.B) {
	benchAblation(b, core.FitOptions{UnscaledStall: true})
}

func BenchmarkAblationNoWindowCap(b *testing.B) {
	benchAblation(b, core.FitOptions{NoWindowCap: true})
}

// --- Substrate throughput benches. ---

// BenchmarkSimulatorThroughput measures the interval-simulation loop
// itself: the workload is materialized once and replayed through the
// allocation-free RunInto path, exactly how a grid plan's cells consume
// their shared buffers. Generation cost is measured separately by
// BenchmarkTraceGeneration. The bench-baseline CI job gates both the
// Mops/s and the allocs/op (a warmed simulator must not allocate).
func BenchmarkSimulatorThroughput(b *testing.B) {
	s, err := sim.New(uarch.CoreI7())
	if err != nil {
		b.Fatal(err)
	}
	suite := suites.CPU2006Like(suites.Options{NumOps: 100000})
	w, _ := suite.Find("gcc.1")
	src := trace.Materialize(w).Replay()
	var res sim.Result
	// Warm up: the first run builds the branch predictor.
	if err := s.RunInto(&res, src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunInto(&res, src); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.NumOps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkTLBAccess isolates the hottest hierarchy structure: the
// fully-associative true-LRU TLB, rebuilt in PR 10 as an open-addressed
// page→slot table with an intrusive LRU list (O(1), allocation-free on
// hits and misses). The address stream mixes page-local runs with
// working-set hops sized past the capacity, so the fast path, the probe
// path and the evict path are all on the clock. Each iteration replays
// the whole 64K-access stream so a -benchtime 1x CI run still measures
// thousands of accesses; the bench-baseline job gates the Mops/s.
func BenchmarkTLBAccess(b *testing.B) {
	tlb, err := cache.NewTLB(uarch.CoreI7().DTLB) // 256 entries, 4K pages
	if err != nil {
		b.Fatal(err)
	}
	// Deterministic stream: 8 accesses per page on average, working set
	// 4× the TLB reach.
	r := rng.New(12345)
	addrs := make([]uint64, 1<<16)
	span := uint64(4 * 256 * 4096)
	addr := uint64(0)
	for i := range addrs {
		if r.Intn(8) == 0 {
			addr = r.Uint64n(span)
		} else {
			addr += uint64(r.Intn(512))
		}
		addrs[i] = addr
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			tlb.Access(a)
		}
	}
	b.ReportMetric(float64(len(addrs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkIQSchedule stresses the issue-queue scheduler — PR 10's
// calendar ring replacing the departure-time min-heap — by shrinking
// the IQ until occupancy stalls dominate: every dispatch then exercises
// popUpTo/min/push instead of sailing through an empty queue. Reported
// as whole-loop ns/op (the ring has no seam to time in isolation
// without distorting it); the bench-baseline CI job gates it.
func BenchmarkIQSchedule(b *testing.B) {
	m := uarch.CoreTwo()
	m.Name = "core2-iq8"
	m.IQSize = 8
	s, err := sim.New(m)
	if err != nil {
		b.Fatal(err)
	}
	suite := suites.CPU2006Like(suites.Options{NumOps: 100000})
	w, _ := suite.Find("mcf")
	src := trace.Materialize(w).Replay()
	var res sim.Result
	if err := s.RunInto(&res, src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunInto(&res, src); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.NumOps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkSeedsParallel measures a whole seed sweep — PR 10 fans the
// replications out across the worker pool instead of running one lab
// per seed sequentially — end to end: simulation of every (seed,
// workload) run plus the per-seed fits, no store, so every iteration
// pays the full cost. The bench-baseline CI job gates the wall-clock
// ns/op.
func BenchmarkSeedsParallel(b *testing.B) {
	s, err := experiments.SeedsSpec{
		Base:  &experiments.MachineSpec{Name: "core2"},
		Suite: "cpu2000",
		Count: 4,
	}.Resolve()
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{NumOps: 10000, FitStarts: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSeeds(s, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 1 {
			b.Fatal("unexpected report shape")
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	suite := suites.CPU2000Like(suites.Options{NumOps: 100000})
	w, _ := suite.Find("mcf")
	g := trace.New(w)
	var op trace.MicroOp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		for g.Next(&op) {
		}
	}
	b.ReportMetric(float64(w.NumOps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkTraceReplay is BenchmarkTraceGeneration's counterpart for
// the materialized path: replaying a buffered stream instead of
// regenerating it. The ratio between the two is the per-machine cost a
// grid plan's shared buffers remove; the bench-baseline CI job gates
// this throughput alongside SimulatorThroughput.
func BenchmarkTraceReplay(b *testing.B) {
	suite := suites.CPU2000Like(suites.Options{NumOps: 100000})
	w, _ := suite.Find("mcf")
	buf := trace.Materialize(w)
	var op trace.MicroOp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := buf.Replay()
		for r.Next(&op) {
		}
	}
	b.ReportMetric(float64(w.NumOps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// --- Extension: multi-axis grid plans (the plan engine). The benchmark
// measures the plan's simulation phase over a 2×2 rob×mshrs grid (base
// + 4 cells × the cpu2000 workloads) with trace sharing on (replay, the
// default) and off (regen): the Mops/s gap is the wall-clock win from
// materializing each workload's µop stream once per plan instead of
// once per cell. No run store, so every iteration honestly simulates;
// the fit is identical either way and measured by the figure benches. ---

func benchGridPlan(b *testing.B, noShare bool) {
	plan, err := experiments.NewPlan(uarch.CoreTwo(), []experiments.PlanAxis{
		{Param: "rob", Values: []int{48, 96}},
		{Param: "mshrs", Values: []int{4, 8}},
	}, "cpu2000")
	if err != nil {
		b.Fatal(err)
	}
	ops := benchOps()
	suite := suites.CPU2000Like(suites.Options{NumOps: ops})
	opts := experiments.Options{NumOps: ops, NoSharedTraces: noShare}
	var stats experiments.SimStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab, err := experiments.NewCustomLab(plan.Machines, []suites.Suite{suite}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := lab.Simulate(); err != nil {
			b.Fatal(err)
		}
		stats = lab.SimStats()
	}
	perIter := float64(len(plan.Machines)*len(suite.Workloads)) * float64(ops)
	b.ReportMetric(perIter*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
	b.ReportMetric(float64(stats.TraceGens), "trace-gens")
}

func BenchmarkGridPlan(b *testing.B) {
	b.Run("replay", func(b *testing.B) { benchGridPlan(b, false) })
	b.Run("regen", func(b *testing.B) { benchGridPlan(b, true) })
}

func BenchmarkCalibrateCore2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := calibrator.Calibrate(uarch.CoreTwo()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	m := &core.Model{Machine: uarch.CoreTwo().Params(), P: core.Params{
		B1: 1, B2: 0.5, B3: 1, B4: 10, B5: 4, B6: 0.2, B7: 0.05, B8: 0.1, B9: 1, B10: 10,
	}}
	f := core.Features{MpuL1I: 0.002, MpuBr: 0.004, MpuDL1: 0.01, MpuLLCD: 0.001,
		MpuDTLB: 0.0002, FP: 0.1}
	var v float64
	for i := 0; i < b.N; i++ {
		v += m.PredictCPI(f)
	}
	if v == 0 {
		b.Fatal("unexpected zero")
	}
}

// --- Extension: L2 stride prefetcher (disabled in the paper-stock
// machines). Reports the CPI reduction a Core 2 streamer would deliver
// on a streaming workload — an optional/extension feature of the
// substrate, not a paper artifact. ---

func BenchmarkExtensionPrefetchSpeedup(b *testing.B) {
	suite := suites.CPU2006Like(suites.Options{NumOps: 200000})
	w, _ := suite.Find("lbm")
	g := trace.New(w)
	stock := uarch.CoreTwo()
	pf := uarch.CoreTwo()
	pf.Name = "core2-pf"
	pf.Prefetch = uarch.PrefetchConfig{Enabled: true, Streams: 64, Degree: 4}
	sStock, err := sim.New(stock)
	if err != nil {
		b.Fatal(err)
	}
	sPF, err := sim.New(pf)
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		r1, err := sStock.Run(g)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sPF.Run(g)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r1.Counters.CPI() / r2.Counters.CPI()
	}
	b.ReportMetric(speedup, "speedup-x")
}
